//! Cross-crate integration: browser pipelines driving the 3G network
//! against the synthetic corpus.

use ewb_core::browser::pipeline::{load_page, PipelineConfig, PipelineMode};
use ewb_core::net::ThreeGFetcher;
use ewb_core::rrc::RrcState;
use ewb_core::simcore::SimTime;
use ewb_core::webpage::{benchmark_corpus, ObjectKind, OriginServer, PageVersion};
use ewb_core::CoreConfig;

fn run(
    mode: PipelineMode,
    key: &str,
    version: PageVersion,
) -> (
    ewb_core::browser::pipeline::LoadMetrics,
    ewb_core::rrc::RrcMachine,
) {
    let corpus = benchmark_corpus(99);
    let server = OriginServer::from_corpus(&corpus);
    let page = corpus.page(key, version).unwrap();
    let cfg = CoreConfig::paper();
    let mut fetcher = ThreeGFetcher::new(cfg.net, cfg.rrc, &server, SimTime::ZERO);
    let metrics = load_page(
        &mut fetcher,
        page.root_url(),
        SimTime::ZERO,
        &PipelineConfig::new(mode),
        &cfg.cost,
    );
    (metrics, fetcher.into_machine())
}

#[test]
fn both_pipelines_fetch_the_complete_page_over_3g() {
    let corpus = benchmark_corpus(99);
    let espn = corpus.page("espn", PageVersion::Full).unwrap();
    for mode in [PipelineMode::Original, PipelineMode::EnergyAware] {
        let (metrics, machine) = run(mode, "espn", PageVersion::Full);
        assert_eq!(metrics.objects_fetched, espn.object_count(), "{mode:?}");
        assert_eq!(metrics.bytes_fetched, espn.total_bytes(), "{mode:?}");
        assert_eq!(metrics.fetch_failures, 0);
        // The radio promoted exactly once (cold start) and is connected.
        assert_eq!(machine.counters().idle_to_dch, 1);
        assert!(machine.state().is_connected());
    }
}

#[test]
fn energy_aware_phases_are_ordered_and_radio_idle_capable() {
    let (metrics, machine) = run(PipelineMode::EnergyAware, "ebay", PageVersion::Full);
    // Transmission phase strictly precedes the layout phase.
    assert!(metrics.data_transmission_end < metrics.final_display_at);
    // No transfer is still running at the end of the transmission phase:
    // the radio *could* be released right there (the paper's §4.1 claim).
    assert!(!machine.is_transferring());
    assert!(machine.now() <= metrics.data_transmission_end);
}

#[test]
fn js_and_css_discovered_resources_flow_through_the_network() {
    let corpus = benchmark_corpus(99);
    let espn = corpus.page("espn", PageVersion::Full).unwrap();
    let spec = espn.spec();
    assert!(spec.js_fetches > 0 && spec.css_image_refs > 0);
    let (metrics, _) = run(PipelineMode::EnergyAware, "espn", PageVersion::Full);
    // All objects fetched implies the JS-computed and CSS-scanned URLs
    // were found — they only exist behind execution/scanning.
    assert_eq!(metrics.objects_fetched, espn.object_count());
    let images = espn.count_kind(ObjectKind::Image);
    assert_eq!(metrics.image_objects, images);
}

#[test]
fn loads_are_deterministic() {
    let (a, ma) = run(PipelineMode::Original, "cnn", PageVersion::Mobile);
    let (b, mb) = run(PipelineMode::Original, "cnn", PageVersion::Mobile);
    assert_eq!(a.final_display_at, b.final_display_at);
    assert_eq!(a.bytes_fetched, b.bytes_fetched);
    assert_eq!(ma.energy_j(), mb.energy_j());
}

#[test]
fn radio_settles_to_idle_after_the_load() {
    let (metrics, mut machine) = run(PipelineMode::Original, "bbc", PageVersion::Mobile);
    machine.advance_to(metrics.final_display_at + ewb_core::simcore::SimDuration::from_secs(30));
    assert_eq!(machine.state(), RrcState::Idle);
    assert_eq!(machine.counters().t1_expirations, 1);
    assert_eq!(machine.counters().t2_expirations, 1);
}

#[test]
fn mobile_loads_are_much_faster_than_full_loads() {
    let (mobile, _) = run(PipelineMode::Original, "espn", PageVersion::Mobile);
    let (full, _) = run(PipelineMode::Original, "espn", PageVersion::Full);
    assert!(
        full.load_time().as_secs_f64() > 2.5 * mobile.load_time().as_secs_f64(),
        "full {} vs mobile {}",
        full.load_time(),
        mobile.load_time()
    );
}
