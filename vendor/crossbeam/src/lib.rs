//! Offline stand-in for `crossbeam`, exposing the `thread::scope` /
//! `Scope::spawn` / `ScopedJoinHandle::join` surface this workspace
//! uses, implemented on top of `std::thread::scope` (stable since Rust
//! 1.63). The offline build container cannot fetch the real crate.
//!
//! Semantics match the uses in this repo: every spawned handle is
//! joined inside the scope, so the outer `Result` is always `Ok` and
//! worker panics surface through `join()` exactly as with crossbeam.

#![forbid(unsafe_code)]

/// Scoped threads (the `crossbeam::thread` module surface).
pub mod thread {
    use std::any::Any;

    /// The result type crossbeam's scope APIs return.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle that can spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope (crossbeam's signature) so nested spawns work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope in which threads borrowing `'env` data can be
    /// spawned; all are joined before the call returns.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam this implementation never returns `Err`: a
    /// panic in an unjoined child propagates out of `scope` directly
    /// (the workspace always joins every handle, where behavior is
    /// identical).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }

    #[test]
    fn worker_panic_surfaces_via_join() {
        let r = crate::thread::scope(|s| s.spawn(|_| panic!("boom")).join());
        assert!(r.unwrap().is_err());
    }
}
