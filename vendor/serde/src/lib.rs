//! Offline stand-in for `serde`, providing exactly the surface this
//! workspace uses: `#[derive(Serialize, Deserialize)]` plus the traits,
//! backed by a self-describing [`Content`] tree that `serde_json`
//! renders and parses.
//!
//! The container this repo builds in has no crates.io access, so the
//! real serde cannot be fetched. This crate keeps the public API of the
//! workspace unchanged (`use serde::{Deserialize, Serialize}` and the
//! derives compile as-is) while staying a few hundred lines. The derive
//! macros live in the sibling `serde_derive` crate and generate
//! implementations of the two traits below.
//!
//! Representation conventions mirror serde's JSON encoding so that a
//! future swap back to the real crates is a drop-in change:
//! structs → maps, newtype structs → their inner value, tuples/arrays →
//! sequences, unit enum variants → strings, data-carrying variants →
//! single-entry maps.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value (the data model both the derive
/// macros and `serde_json` speak).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also `Option::None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A key-ordered map (order is preserved as written).
    Map(Vec<(String, Content)>),
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing an unexpected shape.
    pub fn expected(what: &str, got: &Content) -> DeError {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl Content {
    /// A short name for the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }

    /// The map entries, or an error mentioning `ty`.
    pub fn as_map(&self, ty: &str) -> Result<&[(String, Content)], DeError> {
        match self {
            Content::Map(m) => Ok(m),
            other => Err(DeError(format!(
                "expected map for {ty}, got {}",
                other.kind()
            ))),
        }
    }

    /// The sequence elements, or an error mentioning `ty`.
    pub fn as_seq(&self, ty: &str) -> Result<&[Content], DeError> {
        match self {
            Content::Seq(s) => Ok(s),
            other => Err(DeError(format!(
                "expected sequence for {ty}, got {}",
                other.kind()
            ))),
        }
    }

    /// Looks up a struct field by name.
    pub fn map_get<'a>(
        entries: &'a [(String, Content)],
        key: &str,
    ) -> Result<&'a Content, DeError> {
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError(format!("missing field `{key}`")))
    }

    fn as_f64(&self) -> Result<f64, DeError> {
        match *self {
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            Content::F64(v) => Ok(v),
            Content::Null => Ok(f64::NAN),
            ref other => Err(DeError::expected("number", other)),
        }
    }

    fn as_i128(&self) -> Result<i128, DeError> {
        match *self {
            Content::U64(v) => Ok(v as i128),
            Content::I64(v) => Ok(v as i128),
            Content::F64(v) if v.fract() == 0.0 && v.abs() < 9e18 => Ok(v as i128),
            ref other => Err(DeError::expected("integer", other)),
        }
    }
}

/// Serialization into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// Deserialization from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a content tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c.as_i128()?;
                <$t>::try_from(v).map_err(|_| {
                    DeError(format!("{v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c.as_i128()?;
                <$t>::try_from(v).map_err(|_| {
                    DeError(format!("{v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64()
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// ---- containers ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq("Vec")?.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let seq = c.as_seq("array")?;
        if seq.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, got {}",
                seq.len()
            )));
        }
        let items: Result<Vec<T>, DeError> = seq.iter().map(T::from_content).collect();
        items.map(|v| {
            v.try_into()
                .expect("length checked above; conversion cannot fail")
        })
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq("tuple")?;
                let expected = [$(stringify!($idx)),+].len();
                if seq.len() != expected {
                    return Err(DeError(format!(
                        "expected tuple of length {expected}, got {}", seq.len()
                    )));
                }
                Ok(($($t::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map("BTreeMap")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sort keys so serialization is deterministic across runs (the
        // real serde_json preserves HashMap's random order; determinism
        // matters for this repo's byte-identical model goldens).
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map("HashMap")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}
