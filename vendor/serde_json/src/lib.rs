//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` crate's [`Content`] tree as
//! compact JSON, with `serde_json`-compatible conventions: floats are
//! printed with Rust's shortest round-trip formatting (integral floats
//! keep a trailing `.0`), non-finite floats serialize as `null`, and
//! only mandatory escapes are applied to strings. Parsing is a plain
//! recursive-descent walk with a nesting-depth cap.
//!
//! Round-trip exactness matters here: serialized GBRT models must
//! reparse to bit-identical split thresholds (see the workspace
//! manifest's note on the real crate's `float_roundtrip` feature).
//! Rust's float `Debug` formatting is shortest-round-trip and
//! `str::parse::<f64>` is correctly rounded, so `parse(format(x)) == x`
//! for every finite `f64`.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A serialization or deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for values produced by this workspace (the signature
/// keeps serde_json's fallible shape).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape problem.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    T::from_content(&content).map_err(|e| Error::new(e.0))
}

// ---- writer ----------------------------------------------------------

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            let mut buf = itoa_buffer();
            out.push_str(format_into(&mut buf, format_args!("{v}")));
        }
        Content::I64(v) => {
            let mut buf = itoa_buffer();
            out.push_str(format_into(&mut buf, format_args!("{v}")));
        }
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting
                // and keeps `.0` on integral values, matching serde_json.
                let mut buf = itoa_buffer();
                out.push_str(format_into(&mut buf, format_args!("{v:?}")));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

// Small formatting shim: format_args into a reusable String buffer.
fn itoa_buffer() -> String {
    String::with_capacity(24)
}

fn format_into<'a>(buf: &'a mut String, args: fmt::Arguments<'_>) -> &'a str {
    use fmt::Write as _;
    buf.clear();
    let _ = buf.write_fmt(args);
    buf.as_str()
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Content::Null),
            Some(b't') if self.literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("sliced on ASCII boundaries");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                });
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.literal("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trip_is_exact() {
        for &v in &[
            0.1f64,
            1.0,
            -0.0,
            1e300,
            5e-324,
            1.7976931348623157e308,
            3.5,
        ] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {json} -> {back}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, -3.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,-3.25]]");
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\u{1}é😀".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
