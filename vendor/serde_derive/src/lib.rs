//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually contains — non-generic structs with
//! named fields, tuple structs, and enums with unit / tuple / struct
//! variants — generating impls of the `Content`-based traits in the
//! sibling vendored `serde` crate. Written directly against
//! `proc_macro` (no `syn`/`quote`, which are equally unfetchable in the
//! offline build container): the input item is walked token by token
//! and the impl is assembled as source text.
//!
//! Supported field attribute: `#[serde(skip)]` — the field is omitted
//! on serialize and filled from `Default::default()` on deserialize.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("expected struct or enum, found `{other}`"),
    };
    Item { name, shape }
}

/// Skips `#[...]` attribute groups, returning true if any of them was
/// `#[serde(skip)]`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if attr_is_serde_skip(g.stream()) {
                skip = true;
            }
            *i += 1;
        }
    }
    skip
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists. Commas inside `<...>` generic
/// arguments are tracked by angle-bracket depth (they are bare puncts,
/// not groups); commas inside `(...)`/`[...]` are already grouped.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next
        // top-level comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while let Some(t) = tokens.get(i) {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---- code generation -------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut entries = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                entries.push_str(&format!(
                    "(::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_content(&self.{0})),",
                    f.name
                ));
            }
            format!("::serde::Content::Map(::std::vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(","))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Content::Str(\
                         ::std::string::String::from(\"{vname}\")),"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Content::Map(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Serialize::to_content(__f0))]),"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Content::Seq(::std::vec![{}]))]),",
                            binders.join(","),
                            items.join(",")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_content({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Content::Map(::std::vec![{}]))]),",
                            binders.join(","),
                            entries.join(",")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!("{}: ::std::default::Default::default(),", f.name));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::Deserialize::from_content(\
                         ::serde::Content::map_get(__m, \"{0}\")?)?,",
                        f.name
                    ));
                }
            }
            format!(
                "let __m = __c.as_map(\"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __c.as_seq(\"{name}\")?;\n\
                 if __s.len() != {arity} {{\n\
                 return ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"expected {arity} elements for {name}, got {{}}\", __s.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(",")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_content(__v)?)),"
                    )),
                    VariantShape::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __s = __v.as_seq(\"{name}::{vname}\")?;\n\
                             if __s.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"expected {arity} elements for {name}::{vname}, \
                             got {{}}\", __s.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }},",
                            items.join(",")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::std::default::Default::default(),",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: ::serde::Deserialize::from_content(\
                                     ::serde::Content::map_get(__fm, \"{0}\")?)?,",
                                    f.name
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __fm = __v.as_map(\"{name}::{vname}\")?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                             }},",
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"unknown unit variant `{{}}` of {name}\", __other))),\n\
                 }},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = &__m[0];\n\
                 let _ = __v;\n\
                 match __k.as_str() {{\n\
                 {data_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"unknown variant `{{}}` of {name}\", __other))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"enum {name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
