//! Offline stand-in for `criterion`: the API surface this workspace's
//! benches use (`criterion_group!`/`criterion_main!`, `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, `black_box`),
//! backed by a simple warmup-then-measure timer instead of criterion's
//! statistical machinery. Results print as `name: time/iter` lines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (accepted and ignored by this stand-in).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Measured mean time per iteration, filled by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`: a short warmup, then enough iterations to fill
    /// the measurement window, reporting mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: run until ~50 ms elapsed.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = start.elapsed() / warmup_iters.max(1) as u32;
        // Measurement window of ~200 ms, at least 10 iterations.
        let target = Duration::from_millis(200);
        let iters =
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(10, 1_000_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed() / iters as u32;
    }
}

fn print_result(name: &str, per_iter: Duration) {
    let ns = per_iter.as_nanos();
    let human = if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    };
    println!("{name:<50} {human}/iter");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count (accepted and ignored by this stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        print_result(&format!("{}/{}", self.name, id.id), b.elapsed_per_iter);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b, input);
        print_result(&format!("{}/{}", self.name, id.id), b.elapsed_per_iter);
        self
    }

    /// Finishes the group (no-op).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        print_result(name, b.elapsed_per_iter);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a group of benchmark functions as a single runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
