//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use — the
//! [`strategy::Strategy`] trait with `prop_map`, numeric-range and
//! regex-literal strategies, tuple composition, `collection::vec`,
//! `Just`, `prop_oneof!`, `any::<T>()`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros — running each test over a
//! stream of deterministically seeded random cases (seeded from the
//! test name, so failures reproduce run over run). There is no
//! shrinking: a failing case reports its inputs' case number instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic random number generation for test cases.

    /// A splitmix64 generator: tiny, fast, and plenty for test-input
    /// generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator from a test name (stable across runs).
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi]` (inclusive).
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            let span = hi - lo;
            if span == u64::MAX {
                return self.next_u64();
            }
            lo + self.next_u64() % (span + 1)
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// The `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds a choice over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.range_u64(0, self.options.len() as u64 - 1) as usize;
            self.options[i].generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            // Guard against rounding up to the excluded endpoint.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (f64::from(self.start)..f64::from(self.end)).generate(rng) as f32
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    impl Strategy for RangeInclusive<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (f64::from(*self.start())..=f64::from(*self.end())).generate(rng) as f32
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Work in offset space to handle signed ranges.
                    let span = (self.end as i128) - (self.start as i128) - 1;
                    let off = rng.range_u64(0, span as u64);
                    ((self.start as i128) + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `any::<T>()` support: the full value range of a primitive.
    pub struct Any<T>(PhantomData<T>);

    /// Generates any value of a supported primitive type.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Strategy for Any<u16> {
        type Value = u16;
        fn generate(&self, rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }

    impl Strategy for Any<u8> {
        type Value = u8;
        fn generate(&self, rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Strategy for Any<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Strategy for Any<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    // ---- regex-literal string strategies -----------------------------

    /// One parsed atom of the supported regex subset.
    enum Atom {
        /// `.` — any printable ASCII character.
        AnyChar,
        /// `[...]` — explicit characters and `a-z` style ranges.
        Class(Vec<char>),
        /// A literal character.
        Literal(char),
    }

    struct Quantified {
        atom: Atom,
        min: u32,
        max: u32,
    }

    /// A compiled pattern: a sequence of quantified atoms.
    pub struct RegexStrategy {
        atoms: Vec<Quantified>,
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            compile_regex(self).generate(rng)
        }
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for q in &self.atoms {
                let count = rng.range_u64(u64::from(q.min), u64::from(q.max));
                for _ in 0..count {
                    match &q.atom {
                        Atom::AnyChar => {
                            out.push(char::from(rng.range_u64(0x20, 0x7e) as u8));
                        }
                        Atom::Class(chars) => {
                            let i = rng.range_u64(0, chars.len() as u64 - 1) as usize;
                            out.push(chars[i]);
                        }
                        Atom::Literal(c) => out.push(*c),
                    }
                }
            }
            out
        }
    }

    /// Compiles the regex subset used by this workspace's tests:
    /// literals, `.`, character classes with ranges, and `{m,n}` /
    /// `{n}` / `*` / `+` / `?` quantifiers.
    pub fn compile_regex(pattern: &str) -> RegexStrategy {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '[' => {
                    i += 1;
                    let mut class = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad class range {lo}-{hi} in `{pattern}`");
                            for c in lo..=hi {
                                class.push(c);
                            }
                            i += 3;
                        } else {
                            class.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in `{pattern}`");
                    i += 1; // closing ']'
                    assert!(!class.is_empty(), "empty class in `{pattern}`");
                    Atom::Class(class)
                }
                '\\' => {
                    i += 1;
                    assert!(i < chars.len(), "trailing backslash in `{pattern}`");
                    let c = chars[i];
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| i + p)
                            .unwrap_or_else(|| panic!("unterminated {{}} in `{pattern}`"));
                        let inner: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        if let Some((lo, hi)) = inner.split_once(',') {
                            (
                                lo.trim().parse().expect("bad {m,n} lower bound"),
                                hi.trim().parse().expect("bad {m,n} upper bound"),
                            )
                        } else {
                            let n: u32 = inner.trim().parse().expect("bad {n} count");
                            (n, n)
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            atoms.push(Quantified { atom, min, max });
        }
        RegexStrategy { atoms }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Anything usable as a size specification for [`vec`].
    pub trait SizeRange {
        /// Inclusive (min, max) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    /// A strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_u64(self.min as u64, self.max as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(bindings in strategies) { .. }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let __result: ::std::result::Result<(), ::std::string::String> = {
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __run = move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __run()
                };
                if let ::std::result::Result::Err(__msg) = __result {
                    ::std::panic!(
                        "proptest `{}` failed on case {}/{}: {}",
                        stringify!($name), __case + 1, __config.cases, __msg
                    );
                }
            }
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}` ({:?} != {:?})",
                stringify!($left), stringify!($right), __l, __r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(
            ::std::vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1usize..10, y in -5.0f64..5.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn regex_strings_match_shape(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![Just(1u64), Just(2u64)].prop_map(|x| x * 10)
        ) {
            prop_assert!(v == 10 || v == 20);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0.0f64..1.0;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a).to_bits(), s.generate(&mut b).to_bits());
        }
    }
}
